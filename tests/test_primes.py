"""Prime generation and primality (repro.rns.primes)."""

import pytest

from repro.rns.primes import (
    fhe_friendly_primes,
    is_prime,
    ntt_friendly_primes,
    primitive_root_of_unity,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 65537):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 65536):
            assert not is_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(c)

    def test_large_known_prime(self):
        assert is_prime((1 << 31) - 1)          # Mersenne M31
        assert not is_prime((1 << 32) - 1)

    def test_negative(self):
        assert not is_prime(-7)


class TestNttFriendlyPrimes:
    def test_congruence(self):
        for n in (64, 256, 1024):
            for q in ntt_friendly_primes(n, 28, 4):
                assert q % (2 * n) == 1
                assert is_prime(q)

    def test_distinct_and_sized(self):
        primes = ntt_friendly_primes(256, 28, 6)
        assert len(set(primes)) == 6
        for q in primes:
            assert (1 << 27) < q < (1 << 28)

    def test_seeded_start_differs(self):
        a = ntt_friendly_primes(256, 28, 3)
        b = ntt_friendly_primes(256, 28, 3, seed=42)
        assert a != b

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ntt_friendly_primes(100, 28, 1)

    def test_deterministic_without_seed(self):
        assert ntt_friendly_primes(128, 24, 3) == ntt_friendly_primes(128, 24, 3)


class TestFheFriendlyPrimes:
    def test_congruence_mod_2_16(self):
        """Sec. 5.3's restriction: q ≡ 1 mod 2^16 kills one multiplier stage."""
        for q in fhe_friendly_primes(256, 32, 4):
            assert q % (1 << 16) == 1
            assert is_prime(q)

    def test_implies_ntt_friendly_for_all_supported_n(self):
        for q in fhe_friendly_primes(1024, 32, 3):
            for n in (1024, 4096, 16384, 32768):
                assert (q - 1) % (2 * n) == 0

    def test_requires_wide_words(self):
        with pytest.raises(ValueError):
            fhe_friendly_primes(256, 16, 1)


class TestPrimitiveRoots:
    def test_order_and_primitivity(self):
        q = ntt_friendly_primes(256, 28, 1)[0]
        root = primitive_root_of_unity(512, q)
        assert pow(root, 512, q) == 1
        assert pow(root, 256, q) == q - 1  # primitive, not just of dividing order

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            primitive_root_of_unity(512, 13)  # 512 does not divide 12
