"""Serving runtime: registry, slot batching, job server, run validation.

The serving-layer invariants:

- ``Program.signature()`` keys structural identity (names don't matter,
  wiring does);
- registry-cached contexts/compiled programs produce values bit-identical
  to fresh compile/keygen runs;
- pack -> run -> unpack equals k sequential runs (bit-identical BGV,
  within tolerance CKKS), and unsound packings are rejected;
- the server survives concurrent mixed-signature traffic and reports
  truthful telemetry;
- malformed ``repro.run`` requests fail fast with clear errors.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.backends import FunctionalBackend, validate_run_args
from repro.dsl.program import Program
from repro.serve import (
    STATUS_EXPIRED,
    STATUS_OK,
    BatchUnsupported,
    FheServer,
    ProgramRegistry,
    Request,
    SlotBatcher,
    unbatchable_reason,
)
from repro.serve.batcher import solo_layout

N = 256
WIDTH = 8


def linear_bgv(n=N, name="linear", level=3):
    p = Program(n=n, scheme="bgv", name=name)
    x = p.input(level, name="x")
    w = p.input_plain(level, name="w")
    b = p.input_plain(level, name="b")
    p.output(p.add_plain(p.mul_plain(x, w), b))
    return p


def poly_ckks(n=N, name="poly", level=4):
    p = Program(n=n, scheme="ckks", name=name)
    x, y = p.input(level), p.input(level)
    p.output(p.add(p.mul(x, y), x))
    return p


def bgv_requests(program, count, *, width=WIDTH, seed=0, t=256):
    rng = np.random.default_rng(seed)
    x, w, b = (op.op_id for op in program.ops[:3])
    shared_w = rng.integers(0, t, width)
    return [
        Request(inputs={x: rng.integers(0, t, width)},
                plains={w: shared_w, b: rng.integers(0, t, width)})
        for _ in range(count)
    ]


def ckks_requests(program, count, *, width=WIDTH, seed=0):
    rng = np.random.default_rng(seed)
    x, y = program.ops[0].op_id, program.ops[1].op_id
    return [
        Request(inputs={x: rng.uniform(-1, 1, width),
                        y: rng.uniform(-1, 1, width)})
        for _ in range(count)
    ]


class TestSignature:
    def test_names_do_not_matter(self):
        a, b = linear_bgv(name="a"), linear_bgv(name="b")
        assert a.signature() == b.signature()

    def test_structure_matters(self):
        base = linear_bgv()
        assert base.signature() != poly_ckks().signature()
        assert base.signature() != linear_bgv(n=2 * N).signature()
        assert base.signature() != linear_bgv(level=4).signature()
        extra = linear_bgv()
        extra.output(extra.input(3))
        assert base.signature() != extra.signature()

    def test_rotation_amount_matters(self):
        def rot(steps):
            p = Program(n=N, scheme="bgv")
            p.output(p.rotate(p.input(2), steps))
            return p.signature()

        assert rot(1) != rot(2)

    def test_scheme_matters(self):
        def prog(scheme):
            p = Program(n=N, scheme=scheme)
            p.output(p.add(p.input(2), p.input(2)))
            return p.signature()

        assert prog("bgv") != prog("ckks")


class TestRegistry:
    def test_context_cache_hit_bit_identity(self):
        """Registry-cached keys decrypt the same values as fresh keygen."""
        registry = ProgramRegistry()
        program = linear_bgv()
        request = bgv_requests(program, 1)[0]
        entry1, hit1 = registry.context_for(program, seed=5)
        cold = repro.FunctionalBackend(validate=True).run(
            program, inputs=request.inputs, plains=request.plains,
            context=entry1.context,
        )
        # Same structure, different Program object: still one cache entry.
        entry2, hit2 = registry.context_for(linear_bgv(name="rebuilt"), seed=5)
        assert entry2 is entry1 and not hit1 and hit2
        warm = repro.FunctionalBackend(validate=True).run(
            program, inputs=request.inputs, plains=request.plains,
            context=entry2.context,
        )
        fresh = repro.run(program, backend=repro.FunctionalBackend(seed=5),
                          inputs=request.inputs, plains=request.plains)
        for key in fresh.outputs:
            assert np.array_equal(cold.outputs[key], fresh.outputs[key])
            assert np.array_equal(warm.outputs[key], fresh.outputs[key])

    def test_compiled_cache_hit_identity(self):
        registry = ProgramRegistry()
        program = poly_ckks()
        entry1, hit1 = registry.compiled_for(program)
        entry2, hit2 = registry.compiled_for(poly_ckks(name="again"))
        assert entry2 is entry1 and not hit1 and hit2
        fresh = repro.run(program, backend="f1")
        assert entry1.compiled.time_ms == fresh.time_ms
        assert entry1.compiled.makespan == fresh.stats["compiled"].makespan
        reused = repro.F1Backend().run(program, compiled=entry1.compiled)
        assert reused.time_ms == fresh.time_ms
        assert reused.stats["compile_reused"]

    def test_distinct_params_distinct_entries(self):
        registry = ProgramRegistry()
        program = linear_bgv()
        entry1, _ = registry.context_for(program, seed=0)
        entry2, _ = registry.context_for(program, seed=1)
        assert entry1 is not entry2
        assert registry.stats()["contexts"] == 2

    def test_stats_hit_rate(self):
        registry = ProgramRegistry()
        program = linear_bgv()
        registry.context_for(program)
        registry.context_for(program)
        registry.context_for(program)
        stats = registry.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_compiled_check_upgraded_on_demand(self):
        """A check=False artifact is checked (not re-compiled) when a
        later caller requires check=True."""
        registry = ProgramRegistry()
        program = poly_ckks()
        entry1, _ = registry.compiled_for(program, check=False)
        assert not entry1.checked
        entry2, hit = registry.compiled_for(program, check=True)
        assert hit and entry2 is entry1 and entry1.checked

    def test_explicit_params_override_and_key(self):
        params = repro.FheParams.build(n=N, levels=5, prime_bits=28,
                                       plaintext_modulus=256)
        registry = ProgramRegistry()
        program = linear_bgv()
        derived, _ = registry.context_for(program)
        explicit, hit = registry.context_for(program, params=params)
        assert not hit and explicit is not derived
        assert explicit.params is params
        again, hit = registry.context_for(program, params=params)
        assert hit and again is explicit

    def test_concurrent_cold_start_builds_once(self):
        registry = ProgramRegistry()
        program = poly_ckks()
        entries = []

        def grab():
            entries.append(registry.context_for(program)[0])

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(e is entries[0] for e in entries)
        assert registry.stats()["misses"] == 1


class TestSlotBatcher:
    def test_bgv_round_trip_matches_sequential(self):
        program = linear_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = bgv_requests(program, 5)
        outs, _ = batcher.run(requests, repro.FunctionalBackend("bgv"), seed=3)
        for j, request in enumerate(requests):
            solo = repro.run(
                program, backend=repro.FunctionalBackend("bgv"),
                inputs=request.inputs, plains=request.plains, seed=11,
            )
            for out_id, solo_vec in solo.outputs.items():
                assert np.array_equal(
                    outs[j][out_id] % 256,
                    np.asarray(solo_vec)[: batcher.stride] % 256,
                ), f"request {j} not bit-identical"

    def test_ckks_round_trip_matches_sequential(self):
        program = poly_ckks()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = ckks_requests(program, 6)
        outs, _ = batcher.run(requests, repro.FunctionalBackend("ckks"), seed=3)
        for j, request in enumerate(requests):
            solo = repro.run(
                program, backend=repro.FunctionalBackend("ckks"),
                inputs=request.inputs, plains=request.plains, seed=11,
            )
            for out_id, solo_vec in solo.outputs.items():
                err = np.max(np.abs(
                    outs[j][out_id][:WIDTH] - np.asarray(solo_vec)[:WIDTH]
                ))
                assert err < 2e-2, f"request {j} error {err}"

    def test_bgv_stride_accounts_for_convolution_growth(self):
        program = linear_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        # one MUL_PLAIN: stride = width + (width - 1)
        assert batcher.stride == 2 * WIDTH - 1
        assert batcher.capacity == N // batcher.stride

    def test_ckks_capacity_uses_half_ring(self):
        batcher = SlotBatcher(poly_ckks(), width=WIDTH)
        assert batcher.stride == WIDTH
        assert batcher.capacity == (N // 2) // WIDTH

    def test_bgv_rotation_is_unbatchable(self):
        p = Program(n=N, scheme="bgv")
        p.output(p.rotate(p.input(2), 1))
        assert "ROTATE" in unbatchable_reason(p)
        with pytest.raises(BatchUnsupported, match="ROTATE"):
            SlotBatcher(p, width=WIDTH)

    def test_ckks_negative_rotation_is_unbatchable(self):
        p = Program(n=N, scheme="ckks")
        p.output(p.rotate(p.input(2), -1))
        assert "negative" in unbatchable_reason(p)
        with pytest.raises(BatchUnsupported, match="negative"):
            SlotBatcher(p, width=WIDTH)

    def test_ckks_nonnegative_rotation_is_batchable(self):
        p = Program(n=N, scheme="ckks")
        x = p.input(2)
        p.output(p.add(p.rotate(x, 1), x))
        assert unbatchable_reason(p) is None
        batcher = SlotBatcher(p, width=WIDTH)
        assert batcher.rotation_steps == (1,)

    def test_ring_wrapping_rotation_rejected_at_layout(self):
        # steps large enough that the last block's rotation wraps to lane 0
        p = Program(n=N, scheme="ckks")
        x = p.input(2)
        p.output(p.add(p.rotate(x, N // 2 - WIDTH // 2), x))
        assert unbatchable_reason(p) is None  # program-level rule passes
        with pytest.raises(BatchUnsupported, match="wraps"):
            SlotBatcher(p, width=WIDTH)

    def test_rotation_batch_matches_solo(self):
        p = Program(n=N, scheme="ckks", name="windows")
        x = p.input(3)
        acc = p.add(x, p.rotate(x, 1))
        acc = p.add(acc, p.rotate(x, 3))
        out = p.output(acc)
        batcher = SlotBatcher(p, width=WIDTH)
        rng = np.random.default_rng(7)
        requests = [Request(inputs={x.op_id: rng.uniform(-1, 1, WIDTH)})
                    for _ in range(4)]
        backend = FunctionalBackend(validate=True)
        outs, _ = batcher.run(requests, backend)
        for j, req in enumerate(requests):
            solo = backend.run(p, inputs=req.inputs)
            err = np.max(np.abs(
                outs[j][out.op_id][:WIDTH] - solo.outputs[out.op_id][:WIDTH]
            ))
            assert err < 2e-2, f"request {j} error {err}"

    def test_cross_level_batch_is_bgv_bit_identical(self):
        program = linear_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        assert batcher.level_plan["base_level"] == 3
        assert batcher.level_plan["min_level"] == 1
        requests = bgv_requests(program, 4)
        for req, level in zip(requests, (3, 2, 2, 3)):
            req.level = level
        backend = FunctionalBackend(validate=True)
        outs, _ = batcher.run(requests, backend)
        for j, req in enumerate(requests):
            solo = backend.run(program, inputs=req.inputs, plains=req.plains,
                               batch_layout=solo_layout(program, req.level))
            for out_id, got in outs[j].items():
                want = solo.outputs[out_id][:got.shape[0]]
                assert np.array_equal(got % 256, want % 256), (j, out_id)

    def test_out_of_range_request_level_rejected(self):
        program = linear_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        with pytest.raises(ValueError, match="outside"):
            batcher.check_request(
                Request(inputs={program.ops[0].op_id: np.ones(WIDTH)}, level=5)
            )

    def test_uniform_base_level_batch_has_no_layout(self):
        program = poly_ckks()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = ckks_requests(program, 3)
        assert batcher.layout(requests) is None
        requests[1].level = batcher.level_plan["base_level"] - 1
        layout = batcher.layout(requests)
        assert layout is not None and layout.levels[1] == layout.base_level - 1

    def test_bgv_ct_mul_is_unbatchable(self):
        p = Program(n=N, scheme="bgv")
        x, y = p.input(3), p.input(3)
        p.output(p.mul(x, y))
        assert "convolution" in unbatchable_reason(p)
        with pytest.raises(BatchUnsupported, match="convolution"):
            SlotBatcher(p, width=WIDTH)

    def test_ckks_ct_mul_is_batchable(self):
        assert unbatchable_reason(poly_ckks()) is None

    def test_mixed_plain_consumer_is_unbatchable(self):
        p = Program(n=N, scheme="bgv")
        x = p.input(3)
        shared = p.input_plain(3)
        p.output(p.add_plain(p.mul_plain(x, shared), shared))
        assert "feeds both" in unbatchable_reason(p)

    def test_divergent_shared_plain_rejected(self):
        program = linear_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = bgv_requests(program, 2)
        w = program.ops[1].op_id
        requests[1].plains[w] = requests[1].plains[w] + 1
        with pytest.raises(BatchUnsupported, match="identical across"):
            batcher.pack(requests)

    def test_over_capacity_rejected(self):
        program = poly_ckks()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = ckks_requests(program, batcher.capacity + 1)
        with pytest.raises(ValueError, match="outside"):
            batcher.pack(requests)

    def test_oversized_request_vector_rejected(self):
        program = poly_ckks()
        batcher = SlotBatcher(program, width=WIDTH)
        request = ckks_requests(program, 1)[0]
        request.inputs[program.ops[0].op_id] = np.ones(WIDTH + 1)
        with pytest.raises(ValueError, match="at most"):
            batcher.pack([request])

    def test_underfilled_batch_occupancy(self):
        batcher = SlotBatcher(poly_ckks(), width=WIDTH, max_batch=8)
        assert batcher.capacity == 8
        assert batcher.occupancy(2) == pytest.approx(0.25)


class TestFheServer:
    def test_serves_and_matches_solo_runs(self):
        program = poly_ckks()
        requests = ckks_requests(program, 12)
        with FheServer(max_batch=4, max_wait_ms=5.0, workers=2) as server:
            futures = [server.submit(program, inputs=r.inputs)
                       for r in requests]
            results = [f.result(timeout=60) for f in futures]
            stats = server.stats()
        for request, result in zip(requests, results):
            x, y = program.ops[0].op_id, program.ops[1].op_id
            want = np.asarray(request.inputs[x]) * request.inputs[y] \
                + request.inputs[x]
            got = next(iter(result.values.values()))[:WIDTH]
            assert np.max(np.abs(got - want)) < 2e-2
            assert result.batch_size >= 1
            assert 0 < result.batch_occupancy <= 1
            assert result.latency_ms >= result.queue_ms >= 0
        assert stats["requests"] == 12
        assert stats["batches"] <= 4  # batched, not one run per request
        assert stats["registry"]["hit_rate"] > 0

    def test_unbatchable_program_still_served(self):
        p = Program(n=N, scheme="bgv", name="multiplier")
        x, y = p.input(3), p.input(3)
        p.output(p.mul(x, y))
        xs = np.arange(1, 9)
        ys = np.arange(2, 10)
        with FheServer(max_wait_ms=2.0) as server:
            result = server.request(p, inputs={x.op_id: xs, y.op_id: ys})
        from repro.sim.reference import evaluate_reference
        want = evaluate_reference(p, {x.op_id: xs, y.op_id: ys})
        out_id = p.ops[-1].op_id
        got = result.values[out_id]
        assert np.array_equal(got % 256, want[out_id][:got.shape[0]] % 256)
        assert result.batch_size == 1 and result.batch_occupancy == 1.0

    def test_batchable_rotation_program_batches_in_server(self):
        p = Program(n=N, scheme="ckks", name="rotator")
        x = p.input(3)
        p.output(p.add(p.rotate(x, 1), x))
        rng = np.random.default_rng(5)
        datas = [rng.uniform(-1, 1, WIDTH) for _ in range(6)]
        slots = N // 2
        with FheServer(max_batch=6, max_wait_ms=10.0) as server:
            futures = [server.submit(p, inputs={x.op_id: d}, width=WIDTH)
                       for d in datas]
            results = [f.result(timeout=60) for f in futures]
        for data, result in zip(datas, results):
            padded = np.zeros(slots)
            padded[:WIDTH] = data
            want = (np.roll(padded, -1) + padded)[:WIDTH]
            got = next(iter(result.values.values()))[:WIDTH]
            assert np.max(np.abs(got - want)) < 2e-2
        assert max(r.batch_size for r in results) > 1

    def test_max_wait_flushes_partial_batch(self):
        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        with FheServer(max_batch=64, max_wait_ms=20.0) as server:
            result = server.submit(program, inputs=request.inputs).result(timeout=60)
        assert result.batch_size == 1
        assert result.batch_occupancy < 1.0

    def test_f1_backend_amortizes_modeled_time(self):
        program = poly_ckks()
        requests = ckks_requests(program, 8)
        with FheServer(backend="f1", max_batch=8, max_wait_ms=5.0) as server:
            futures = [server.submit(program, inputs=r.inputs, width=WIDTH)
                       for r in requests]
            server.flush()
            results = [f.result(timeout=60) for f in futures]
        solo = repro.run(program, backend="f1")
        full_batch = [r for r in results if r.batch_size == 8]
        assert full_batch, "expected at least one full batch"
        assert full_batch[0].backend_time_ms == pytest.approx(solo.time_ms / 8)

    def test_mixed_signature_concurrent_stress(self):
        """Multi-threaded submitters, several signatures, all bit-checked."""
        bgv = linear_bgv()
        ckks = poly_ckks()
        bgv_reqs = bgv_requests(bgv, 10)
        ckks_reqs = ckks_requests(ckks, 10)
        errors = []
        with FheServer(max_batch=4, max_wait_ms=5.0, workers=3,
                       queue_depth=16) as server:
            def client(program, requests):
                try:
                    futures = [
                        server.submit(program, inputs=r.inputs,
                                      plains=r.plains or None)
                        for r in requests
                    ]
                    for r, f in zip(requests, futures):
                        result = f.result(timeout=120)
                        solo = repro.run(
                            program,
                            backend=repro.FunctionalBackend(validate=False),
                            inputs=r.inputs, plains=r.plains or None, seed=1,
                        )
                        for out_id, want in solo.outputs.items():
                            got = result.values[out_id]
                            want = np.asarray(want)[: got.shape[0]]
                            if program.scheme == "ckks":
                                assert np.max(np.abs(got - want)) < 2e-2
                            else:
                                assert np.array_equal(got % 256, want % 256)
                except Exception as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(bgv, bgv_reqs)),
                threading.Thread(target=client, args=(ckks, ckks_reqs)),
                threading.Thread(target=client, args=(bgv, bgv_reqs)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()
        assert not errors, errors[:1]
        assert stats["requests"] == 30
        assert stats["errors"] == 0
        # One keygen per (signature, params): 2 signatures -> 2 context misses.
        assert stats["registry"]["contexts"] == 2
        assert stats["registry"]["hit_rate"] > 0.5

    def test_injected_backend_params_honored(self):
        """Server-built contexts use the injected backend's explicit params."""
        params = repro.FheParams.build(n=N, levels=5, prime_bits=28,
                                       plaintext_modulus=256)
        backend = repro.FunctionalBackend("bgv", params=params, validate=False)
        program = linear_bgv()
        request = bgv_requests(program, 1)[0]
        with FheServer(backend=backend, max_batch=1, max_wait_ms=5.0) as server:
            server.request(program, inputs=request.inputs,
                           plains=request.plains)
            entry, hit = server.registry.context_for(
                program, scheme="bgv", params=params,
            )
        assert hit and entry.params is params

    def test_submit_after_close_raises(self):
        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        server = FheServer()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(program, inputs=request.inputs)

    def test_malformed_request_rejected_at_submit(self):
        """A bad request fails its own submit, never its batch-mates."""
        program = poly_ckks()
        good = ckks_requests(program, 3)
        bad = {program.ops[0].op_id: np.ones(2 * WIDTH),   # exceeds layout
               program.ops[1].op_id: np.ones(WIDTH)}
        with FheServer(max_batch=4, max_wait_ms=5.0) as server:
            futures = [server.submit(program, inputs=r.inputs, width=WIDTH)
                       for r in good]
            with pytest.raises(ValueError, match="at most"):
                server.submit(program, inputs=bad, width=WIDTH)
            server.flush()
            results = [f.result(timeout=60) for f in futures]
            stats = server.stats()
        assert all(r.values for r in results)
        assert stats["errors"] == 0

    def test_missing_inputs_rejected_at_submit_when_batched(self):
        program = poly_ckks()
        with FheServer(max_batch=4, max_wait_ms=5.0) as server:
            # Establish the layout, then submit with no input values.
            server.submit(program,
                          inputs=ckks_requests(program, 1)[0].inputs,
                          width=WIDTH)
            with pytest.raises(ValueError, match="missing values"):
                server.submit(program)

    def test_divergent_weights_rejected_at_submit(self):
        """Mismatched shared weights fail their own submit, not the bucket —
        and a new bucket may establish fresh weights."""
        program = linear_bgv()
        requests = bgv_requests(program, 2)
        w = program.ops[1].op_id
        requests[1].plains[w] = requests[1].plains[w] + 1  # divergent weights
        with FheServer(max_batch=4, max_wait_ms=10.0) as server:
            future = server.submit(program, inputs=requests[0].inputs,
                                   plains=requests[0].plains)
            with pytest.raises(BatchUnsupported, match="batch currently"):
                server.submit(program, inputs=requests[1].inputs,
                              plains=requests[1].plains)
            server.flush()
            assert future.result(timeout=60).values
            # Bucket flushed: the "divergent" weights are now just the next
            # batch's weights.
            result = server.request(program, inputs=requests[1].inputs,
                                    plains=requests[1].plains)
            stats = server.stats()
        assert result.values and stats["errors"] == 0

    def test_batch_level_error_delivered_to_futures(self):
        """Errors only detectable at execution time still reach the futures."""
        program = poly_ckks()
        backend = repro.FunctionalBackend("ckks", validate=True, tolerance=0.0)
        request = ckks_requests(program, 1)[0]
        with FheServer(backend=backend, max_batch=1, max_wait_ms=5.0) as server:
            future = server.submit(program, inputs=request.inputs)
            with pytest.raises(AssertionError, match="exceeds tolerance"):
                future.result(timeout=60)
            stats = server.stats()
        assert stats["errors"] == 1

    def test_cancelled_future_does_not_poison_batch(self):
        program = poly_ckks()
        requests = ckks_requests(program, 3)
        with FheServer(max_batch=4, max_wait_ms=50.0) as server:
            futures = [server.submit(program, inputs=r.inputs, width=WIDTH)
                       for r in requests]
            cancelled = futures[1].cancel()  # still queued: cancel succeeds
            server.flush()
            assert futures[0].result(timeout=60).values
            assert futures[2].result(timeout=60).values
            stats = server.stats()
        assert cancelled and futures[1].cancelled()
        assert stats["errors"] == 0

    def test_modeled_backend_tolerates_missing_inputs(self):
        """cpu/heax model the op graph; requests need not carry values."""
        program = poly_ckks()
        with FheServer(backend="cpu", max_batch=2, max_wait_ms=5.0) as server:
            futures = [server.submit(program, width=WIDTH) for _ in range(2)]
            server.flush()
            results = [f.result(timeout=60) for f in futures]
        assert all(r.values == {} for r in results)
        assert all(r.backend == "cpu" for r in results)


class TestMultiOutputDemux:
    """Programs with several OUTPUT handles of differing widths demux
    each output bit-identically to solo runs."""

    @staticmethod
    def two_output_bgv(n=N, level=3):
        p = Program(n=n, scheme="bgv", name="two_out")
        x = p.input(level, name="x")
        w = p.input_plain(level, name="w")
        b = p.input_plain(level, name="b")
        p.output(p.mul_plain(x, w), name="scored")   # growth 1: wide output
        p.output(p.add_plain(x, b), name="biased")   # growth 0: narrow output
        return p

    def test_output_widths_differ(self):
        program = self.two_output_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        wide = [op for op in program.ops if op.name == "scored"][0].op_id
        narrow = [op for op in program.ops if op.name == "biased"][0].op_id
        assert batcher.output_widths[wide] == 2 * WIDTH - 1
        assert batcher.output_widths[narrow] == WIDTH
        # Stride covers the widest value, not one growth per MUL_PLAIN op.
        assert batcher.stride == 2 * WIDTH - 1

    def test_parallel_branches_share_stride(self):
        """Two MUL_PLAINs on parallel branches need one growth, not two."""
        p = Program(n=N, scheme="bgv")
        x, y = p.input(3), p.input(3)
        p.output(p.add(p.mul_plain(x), p.mul_plain(y)))
        assert SlotBatcher(p, width=WIDTH).stride == 2 * WIDTH - 1

    def test_chained_mul_plain_accumulates_growth(self):
        p = Program(n=N, scheme="bgv")
        x = p.input(3)
        p.output(p.mul_plain(p.mul_plain(x)))
        assert SlotBatcher(p, width=WIDTH).stride == 3 * WIDTH - 2

    def test_bgv_batched_outputs_match_solo(self):
        program = self.two_output_bgv()
        batcher = SlotBatcher(program, width=WIDTH)
        requests = bgv_requests(program, 4)
        outs, _ = batcher.run(requests, repro.FunctionalBackend("bgv"), seed=3)
        for j, request in enumerate(requests):
            solo = repro.run(
                program, backend=repro.FunctionalBackend("bgv"),
                inputs=request.inputs, plains=request.plains, seed=11,
            )
            for out_id, solo_vec in solo.outputs.items():
                got = outs[j][out_id]
                assert got.shape[0] == batcher.output_widths[out_id]
                assert np.array_equal(
                    got % 256, np.asarray(solo_vec)[: got.shape[0]] % 256
                ), f"request {j} output {out_id} not bit-identical"

    def test_ckks_multi_output_served(self):
        p = Program(n=N, scheme="ckks", name="two_out_ckks")
        x, y = p.input(4), p.input(4)
        p.output(p.mul(x, y), name="prod")
        p.output(p.add(x, y), name="sum")
        requests = ckks_requests(p, 6)
        with FheServer(max_batch=3, max_wait_ms=5.0) as server:
            futures = [server.submit(p, inputs=r.inputs, width=WIDTH)
                       for r in requests]
            results = [f.result(timeout=60) for f in futures]
        x_id, y_id = p.ops[0].op_id, p.ops[1].op_id
        out_ids = [op.op_id for op in p.ops
                   if op.kind is repro.dsl.program.OpKind.OUTPUT]
        for request, result in zip(requests, results):
            xv, yv = request.inputs[x_id], request.inputs[y_id]
            for out_id, want in zip(out_ids, (xv * yv, xv + yv)):
                got = result.values[out_id][:WIDTH]
                assert np.max(np.abs(got - want)) < 2e-2


class TestPriorityDeadline:
    def test_expired_request_fails_fast_with_status(self):
        # A microsecond-scale budget lapses inside the dispatch pipeline
        # itself (thread wakeups alone take longer), so expiry is certain
        # even though the flusher is woken immediately.
        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        with FheServer(max_batch=64, max_wait_ms=300.0) as server:
            result = server.submit(program, inputs=request.inputs,
                                   deadline_ms=0.001).result(timeout=60)
            stats = server.stats()
        assert result.status == STATUS_EXPIRED
        assert result.values == {} and result.batch_size == 0
        # Failed fast: nowhere near the 300 ms bucket wait.
        assert result.latency_ms < 250.0
        assert stats["expired"] == 1 and stats["errors"] == 0

    def test_deadline_pulls_flush_forward(self):
        """A request with a budget tighter than max_wait is served early."""
        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        with FheServer(max_batch=64, max_wait_ms=5000.0) as server:
            start = time.perf_counter()
            result = server.submit(program, inputs=request.inputs,
                                   deadline_ms=500.0).result(timeout=60)
            elapsed = time.perf_counter() - start
        assert result.status == STATUS_OK and result.values
        assert elapsed < 3.0   # nowhere near the 5 s size-or-wait flush

    def test_sub_tick_deadline_served_on_idle_server(self):
        """A budget shorter than the flusher scan tick wakes the flusher:
        the request is served, not discovered already expired."""
        program = poly_ckks()
        requests = ckks_requests(program, 2)
        with FheServer(max_batch=64, max_wait_ms=300.0) as server:
            # Warm keygen/compile so the deadline run is execution-only.
            server.request(program, inputs=requests[0].inputs, width=WIDTH)
            result = server.submit(program, inputs=requests[1].inputs,
                                   width=WIDTH,
                                   deadline_ms=40.0).result(timeout=60)
        assert result.status == STATUS_OK and result.values

    def test_invalid_deadline_rejected(self):
        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        with FheServer() as server:
            with pytest.raises(ValueError, match="deadline_ms"):
                server.submit(program, inputs=request.inputs, deadline_ms=0)

    def test_urgent_requests_claim_batch_slots(self):
        """EDF ordering: with more pending than capacity, the earliest
        deadline and highest priority win the batch (white-box)."""
        from repro.serve.server import _Group, _Pending
        from concurrent.futures import Future

        program = poly_ckks()
        group = _Group(program, program.signature(), WIDTH, max_batch=2)
        now = time.perf_counter()
        lax = _Pending(Request(), Future(), now, priority=0, deadline=None)
        soon = _Pending(Request(), Future(), now + 1e-6, priority=0,
                        deadline=now + 0.010)
        late = _Pending(Request(), Future(), now + 2e-6, priority=0,
                        deadline=now + 0.500)
        vip = _Pending(Request(), Future(), now + 3e-6, priority=9,
                       deadline=now + 0.500)
        group.pending = [lax, soon, late, vip]
        batch = group.take_batch()
        assert batch == [soon, vip]          # EDF first, then priority
        assert group.pending == [late, lax]  # leftovers keep EDF order

    def test_expired_requests_do_not_claim_batch_slots(self):
        """A lapsed request rides along for fast expiry but its capacity
        slot goes to a live request (white-box)."""
        from concurrent.futures import Future
        from repro.serve.server import _Group, _Pending

        program = poly_ckks()
        group = _Group(program, program.signature(), WIDTH, max_batch=2)
        now = time.perf_counter()
        live_a = _Pending(Request(), Future(), now)
        lapsed = _Pending(Request(), Future(), now + 1e-6,
                          deadline=now - 1e-3)
        live_b = _Pending(Request(), Future(), now + 2e-6)
        group.pending = [live_a, lapsed, live_b]
        batch = group.take_batch()
        assert batch == [live_a, live_b, lapsed]
        assert group.pending == []

    def test_saturated_workers_run_urgent_batches_first(self):
        """Queued jobs are popped most-urgent-first (white-box): this is
        where priority= becomes observable under load."""
        from concurrent.futures import Future
        from repro.serve.server import _Pending

        program = poly_ckks()
        request = ckks_requests(program, 1)[0]
        server = FheServer(workers=1, max_wait_ms=10_000.0)
        try:
            group = server._group_for(program, request, WIDTH)
            now = time.perf_counter()

            def job(priority, deadline=None):
                pending = _Pending(Request(), Future(), now,
                                   priority=priority, deadline=deadline)
                return (pending.urgency(), group, [pending])

            with server._jobs_ready:
                server._jobs.extend([
                    job(0), job(9), job(0, deadline=now + 0.01),
                ])
                order = []
                while server._jobs:
                    idx = min(range(len(server._jobs)),
                              key=lambda i: server._jobs[i][0])
                    order.append(server._jobs.pop(idx))
            # Deadline-bearing batch first, then highest priority, then FIFO.
            assert [j[2][0].deadline is not None for j in order] \
                == [True, False, False]
            assert [j[2][0].priority for j in order] == [0, 9, 0]
        finally:
            server.close()

    def test_mixed_deadline_traffic_all_accounted(self):
        """Expired and served requests both resolve; nothing strands."""
        program = poly_ckks()
        requests = ckks_requests(program, 6)
        with FheServer(max_batch=64, max_wait_ms=400.0, workers=2) as server:
            doomed = [server.submit(program, inputs=r.inputs, width=WIDTH,
                                    deadline_ms=0.001)   # lapses in-pipeline
                      for r in requests[:3]]
            served = [server.submit(program, inputs=r.inputs, width=WIDTH)
                      for r in requests[3:]]
            server.flush()
            doomed_results = [f.result(timeout=60) for f in doomed]
            served_results = [f.result(timeout=60) for f in served]
            stats = server.stats()
        assert all(r.status == STATUS_EXPIRED for r in doomed_results)
        assert all(r.status == STATUS_OK and r.values
                   for r in served_results)
        assert stats["expired"] == 3
        assert stats["requests"] == 3   # only live requests count as served


class TestRunValidation:
    def test_empty_program(self):
        with pytest.raises(ValueError, match="empty"):
            repro.run(Program(n=64, name="void"), backend="reference")

    def test_unknown_input_op(self):
        p = Program(n=64)
        x = p.input(2)
        p.output(x)
        with pytest.raises(ValueError, match="not INPUT ops"):
            repro.run(p, backend="reference", inputs={99: np.ones(4)})

    def test_plain_key_in_inputs(self):
        p = Program(n=64)
        x = p.input(2)
        w = p.input_plain(2)
        p.output(p.mul_plain(x, w))
        with pytest.raises(ValueError, match="not INPUT ops"):
            repro.run(p, backend="reference",
                      inputs={x.op_id: np.ones(4), w.op_id: np.ones(4)})

    def test_missing_input_value(self):
        p = Program(n=64)
        x, y = p.input(2), p.input(2)
        p.output(p.add(x, y))
        with pytest.raises(ValueError, match="missing values"):
            repro.run(p, backend="reference", inputs={x.op_id: np.ones(4)})

    def test_missing_plain_is_allowed(self):
        p = Program(n=64)
        x = p.input(2)
        p.output(p.mul_plain(x))
        result = repro.run(p, backend="functional", plains={})
        assert result.stats["validated"]

    def test_overlong_vector(self):
        p = Program(n=64)
        x = p.input(2)
        p.output(x)
        with pytest.raises(ValueError, match="at most 64"):
            repro.run(p, backend="reference", inputs={x.op_id: np.ones(65)})

    def test_ckks_width_is_half_ring(self):
        p = Program(n=64, scheme="ckks")
        x = p.input(2)
        p.output(x)
        with pytest.raises(ValueError, match="at most 32"):
            validate_run_args(p, {x.op_id: np.ones(33)}, None)

    def test_non_vector_rejected(self):
        p = Program(n=64)
        x = p.input(2)
        p.output(x)
        with pytest.raises(ValueError, match="1-D"):
            repro.run(p, backend="reference",
                      inputs={x.op_id: np.ones((2, 2))})

    def test_modeled_backends_validate_too(self):
        p = Program(n=64)
        x = p.input(2)
        p.output(x)
        for backend in ("f1", "cpu", "heax"):
            with pytest.raises(ValueError, match="not INPUT ops"):
                repro.run(p, backend=backend, inputs={42: np.ones(4)})


class TestSeedThreading:
    def test_same_seed_same_generated_outputs(self):
        program = poly_ckks()
        a = repro.run(program, backend="functional", seed=42)
        b = repro.run(program, backend="functional", seed=42)
        for key in a.outputs:
            assert np.array_equal(a.outputs[key], b.outputs[key])

    def test_different_seed_different_inputs(self):
        program = linear_bgv()
        a = repro.run(program, backend="reference", seed=1)
        b = repro.run(program, backend="reference", seed=2)
        assert any(not np.array_equal(a.outputs[k], b.outputs[k])
                   for k in a.outputs)

    def test_seed_shared_by_functional_and_reference(self):
        """Same seed => same generated inputs on both value backends."""
        program = linear_bgv()
        functional = repro.run(program, backend="functional", seed=9)
        reference = repro.run(program, backend="reference", seed=9)
        for key in reference.outputs:
            assert np.array_equal(
                functional.outputs[key] % 256, reference.outputs[key] % 256
            )

    def test_concurrent_seeded_runs_deterministic(self):
        """Workers with explicit seeds share no hidden RNG state."""
        program = poly_ckks()
        baseline = repro.run(program, backend="functional", seed=5).outputs
        results = [None] * 4

        def worker(idx):
            results[idx] = repro.run(
                program, backend="functional", seed=5
            ).outputs

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for outputs in results:
            for key in baseline:
                assert np.array_equal(outputs[key], baseline[key])
