"""CPU and HEAX-sigma baseline models (repro.baselines.*)."""

import pytest

from repro.baselines.cpu import CpuModel
from repro.baselines.heax import HeaxModel
from repro.dsl.program import OpKind, Program


class TestCpuCalibration:
    """The primitive constants are fitted to Table 4's CPU columns; verify
    the fit at the paper's parameter points (within 35%)."""

    def test_ciphertext_ntt_at_n14(self):
        # Paper: 179.2 ns x 8838 = 1.584 ms at (N=2^14, logQ=438, L=14).
        assert CpuModel().ciphertext_ntt_ms(1 << 14, 14) == pytest.approx(
            1.584, rel=0.35
        )

    def test_ciphertext_aut_at_n14(self):
        # Paper: 179.2 ns x 16957 = 3.039 ms.
        assert CpuModel().ciphertext_aut_ms(1 << 14, 14) == pytest.approx(
            3.039, rel=0.35
        )

    def test_mul_order_of_magnitude(self):
        # Paper: 2000 ns x 14396 = 28.8 ms; structural model lands within ~2x.
        got = CpuModel().homomorphic_mul_ms(1 << 14, 14)
        assert 10.0 < got < 60.0

    def test_perm_and_mul_same_order(self):
        """Both are key-switch dominated; the paper's measured mul is ~3-4x
        its perm (implementation detail our structural model does not carry),
        but they must land within one order of magnitude."""
        cpu = CpuModel()
        perm = cpu.homomorphic_perm_ms(1 << 13, 7)
        mul = cpu.homomorphic_mul_ms(1 << 13, 7)
        assert 0.1 < perm / mul < 10.0


class TestCpuProgramModel:
    def test_thread_scaling(self):
        p = Program(n=1024)
        x, y = p.input(4), p.input(4)
        p.output(p.mul(x, y))
        assert CpuModel(threads=8).run_program_ms(p) == pytest.approx(
            CpuModel(threads=1).run_program_ms(p) / 8
        )

    def test_cost_grows_with_level(self):
        cpu = CpuModel()
        lo = cpu.he_op_ns(OpKind.MUL, 1024, 2)
        hi = cpu.he_op_ns(OpKind.MUL, 1024, 8)
        assert hi > 4 * lo  # key switch is ~quadratic in L

    def test_cost_grows_with_n(self):
        cpu = CpuModel()
        assert cpu.he_op_ns(OpKind.ROTATE, 4096, 4) > cpu.he_op_ns(
            OpKind.ROTATE, 1024, 4
        )

    def test_free_ops(self):
        assert CpuModel().he_op_ns(OpKind.INPUT, 1024, 4) == 0.0


class TestHeaxModel:
    def test_f1_vs_heax_ntt_band(self):
        """Paper Table 4: F1 is 1600-1866x faster on ciphertext NTTs."""
        from repro.bench.micro import microbenchmark_f1_ns

        for n, log_q, lo, hi in ((1 << 12, 109, 800, 3200), (1 << 14, 438, 900, 3600)):
            level = (log_q + 31) // 32
            heax_ns = HeaxModel().ciphertext_ntt_ms(n, level) * 1e6
            f1_ns = microbenchmark_f1_ns("ntt", n, log_q)
            assert lo < heax_ns / f1_ns < hi

    def test_f1_vs_heax_aut_band(self):
        """Paper: ~430x on automorphisms (scalar SRAM units)."""
        from repro.bench.micro import microbenchmark_f1_ns

        level = 14
        heax_ns = HeaxModel().ciphertext_aut_ms(1 << 14, level) * 1e6
        f1_ns = microbenchmark_f1_ns("aut", 1 << 14, 438)
        assert 200 < heax_ns / f1_ns < 900

    def test_heax_slower_than_f1_everywhere(self):
        from repro.bench.micro import microbenchmark_f1_ns

        heax = HeaxModel()
        ops_ms = {
            "ntt": heax.ciphertext_ntt_ms, "aut": heax.ciphertext_aut_ms,
            "mul": heax.homomorphic_mul_ms, "perm": heax.homomorphic_perm_ms,
        }
        for op, fn in ops_ms.items():
            assert fn(1 << 13, 7) * 1e6 > microbenchmark_f1_ns(op, 1 << 13, 218)

    def test_keyswitch_dominates_mul(self):
        heax = HeaxModel()
        ks = heax.keyswitch_cycles(1 << 13, 7)
        total = heax.homomorphic_mul_ms(1 << 13, 7) * 1e-3 * heax.clock_mhz * 1e6
        assert ks / total > 0.8
