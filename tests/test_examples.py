"""Examples smoke: every examples/*.py main path runs at reduced sizes.

API drift in the examples fails tier-1 here instead of rotting silently.
Each demo function takes size parameters precisely so this test can shrink
them; the examples' own __main__ blocks run the paper-sized defaults.
"""

import importlib.util
import pathlib

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart():
    quickstart = load_example("quickstart")
    quickstart.functional_demo(n=256)
    quickstart.accelerator_demo(n=4096, level=4)


def test_private_inference():
    private_inference = load_example("private_inference")
    private_inference.encrypted_dense_layer(n=128)
    private_inference.f1_inference_latency(scale=0.1)


def test_encrypted_database():
    encrypted_database = load_example("encrypted_database")
    # t = 257 ≡ 1 (mod 2N): the Fermat chain shrinks to 8 squarings.
    encrypted_database.encrypted_equality(n=64, t=257)
    encrypted_database.f1_db_lookup(scale=0.1)


def test_design_space():
    design_space = load_example("design_space")
    design_space.sweep(scale=0.05)


def test_serving():
    serving = load_example("serving")
    serving.serving_demo(n=256, clients=12)
    serving.modeled_demo(n=4096, level=4)
