"""Seeded fuzz pinning the batched RNS conversions to their references.

Round-2 kernel contract: every fast path in :mod:`repro.rns.convert` and
its consumers (``base_extend``, ``scale_down``, ``from_rns``, the
``to_rns`` tile fast path) computes the *same integers* as the retained
reference formulation, so outputs must be bit-identical — across 28-, 30-
and 31-bit prime sets (including the largest admissible lazy modulus),
mixed-width bases, the strict >= 2^31 fallback, and worst-case all-max
inputs that sit right at the overflow-headroom bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fhe.keyswitch import (
    base_extend,
    base_extend_reference,
    scale_down,
    scale_down_reference,
)
from repro.poly import kernels
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns import convert
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

N = 128


def _random_limbs(rng, basis: RnsBasis, n: int = N) -> np.ndarray:
    return np.stack(
        [rng.integers(0, q, n, dtype=np.uint64) for q in basis.moduli]
    )


def _max_limbs(basis: RnsBasis, n: int = N) -> np.ndarray:
    """Worst-case input: every residue at q-1 (stresses headroom bounds)."""
    return np.stack(
        [np.full(n, q - 1, dtype=np.uint64) for q in basis.moduli]
    )


def _primes(bits: int, count: int, *, exclude=()) -> list[int]:
    return [p for p in ntt_friendly_primes(N, bits, count + len(exclude) + 4)
            if p not in exclude][:count]


def _pair(src_bits: int, dst_bits: int, l_src: int = 4, l_dst: int = 3):
    src = _primes(src_bits, l_src)
    dst = _primes(dst_bits, l_dst, exclude=src)
    return RnsBasis(src), RnsBasis(src + dst)


BASE_CASES = [
    pytest.param(28, 27, id="28bit-to-27bit-default"),
    pytest.param(28, 28, id="28bit-uniform"),
    pytest.param(30, 30, id="30bit-uniform"),
    pytest.param(31, 31, id="31bit-largest-lazy"),
    pytest.param(31, 28, id="31bit-down-to-28bit"),
    pytest.param(32, 32, id="32bit-strict-fallback"),
]


class TestBaseExtend:
    @pytest.mark.parametrize("src_bits,dst_bits", BASE_CASES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_matches_reference(self, src_bits, dst_bits, seed):
        basis, extended = _pair(src_bits, dst_bits)
        rng = np.random.default_rng(seed)
        x = RnsPolynomial(basis, _random_limbs(rng, basis), Domain.COEFF)
        got = base_extend(x, extended)
        ref = base_extend_reference(x, extended)
        assert got.basis == ref.basis
        assert np.array_equal(got.limbs, ref.limbs)

    @pytest.mark.parametrize("src_bits,dst_bits", BASE_CASES)
    def test_all_max_residues(self, src_bits, dst_bits):
        basis, extended = _pair(src_bits, dst_bits)
        x = RnsPolynomial(basis, _max_limbs(basis), Domain.COEFF)
        assert np.array_equal(
            base_extend(x, extended).limbs,
            base_extend_reference(x, extended).limbs,
        )

    def test_largest_lazy_modulus_is_exercised(self):
        # The 31-bit prime set tops out just below the lazy-eligibility
        # bound, so the Shoup digit path runs at its widest admissible
        # modulus (with the extra conditional subtract engaged).
        top = ntt_friendly_primes(N, 31, 1)[0]
        assert 1 << 30 < top < kernels.MAX_LAZY_MODULUS
        assert kernels.shoup_needs_extra_sub(top)
        dec = convert.get_digit_decomposer(tuple(_primes(31, 4)))
        assert dec.lazy and dec.extra

    def test_strict_fallback_paths_are_exercised(self):
        # 32-bit moduli sit past both the Shoup bound (q >= 2^31) and the
        # raw-matmul headroom bound, so the strict digit formula and the
        # per-row reduced lift must carry the conversion.
        src = tuple(_primes(32, 4))
        dst = tuple(_primes(32, 3, exclude=src))
        conv = convert.get_base_conversion(src, src + dst)
        assert not conv.decomposer.lazy
        assert not conv.raw_ok

    def test_mixed_width_source_basis(self):
        src = _primes(28, 2) + _primes(31, 1) + _primes(30, 1)
        dst = _primes(27, 3, exclude=src)
        basis, extended = RnsBasis(src), RnsBasis(src + dst)
        rng = np.random.default_rng(9)
        x = RnsPolynomial(basis, _random_limbs(rng, basis), Domain.COEFF)
        assert np.array_equal(
            base_extend(x, extended).limbs,
            base_extend_reference(x, extended).limbs,
        )

    def test_shared_moduli_rows_are_copies(self):
        basis, extended = _pair(28, 27)
        rng = np.random.default_rng(3)
        x = RnsPolynomial(basis, _random_limbs(rng, basis), Domain.COEFF)
        out = base_extend(x, extended)
        assert np.array_equal(out.limbs[: basis.level], x.limbs)


class TestDigitDecomposer:
    @pytest.mark.parametrize("bits", [28, 30, 31])
    def test_shoup_digits_match_strict_formula(self, bits):
        moduli = tuple(_primes(bits, 5))
        dec = convert.get_digit_decomposer(moduli)
        assert dec.lazy
        rng = np.random.default_rng(bits)
        limbs = _random_limbs(rng, RnsBasis(moduli))
        strict = (limbs * dec.inv_col) % dec.q_col
        assert np.array_equal(dec.digits(limbs), strict)
        maxed = _max_limbs(RnsBasis(moduli))
        assert np.array_equal(
            dec.digits(maxed), (maxed * dec.inv_col) % dec.q_col
        )


class TestScaleDown:
    @pytest.mark.parametrize("t", [1, 2, 256, 65537])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fast_matches_oracle(self, t, seed):
        basis, extended = _pair(28, 27, l_src=4, l_dst=2)
        special = RnsBasis(extended.moduli[-2:])
        rng = np.random.default_rng(seed)
        x = RnsPolynomial(extended, _random_limbs(rng, extended), Domain.COEFF)
        got = scale_down(x, special, t)
        ref = scale_down_reference(x, special, t)
        assert got.basis == ref.basis
        assert np.array_equal(got.limbs, ref.limbs)

    @pytest.mark.parametrize("t", [1, 2, 256, 65537])
    def test_all_max_residues(self, t):
        basis, extended = _pair(28, 27, l_src=4, l_dst=2)
        special = RnsBasis(extended.moduli[-2:])
        x = RnsPolynomial(extended, _max_limbs(extended), Domain.COEFF)
        assert np.array_equal(
            scale_down(x, special, t).limbs,
            scale_down_reference(x, special, t).limbs,
        )

    def test_wide_lazy_moduli(self):
        basis, extended = _pair(31, 30, l_src=3, l_dst=2)
        special = RnsBasis(extended.moduli[-2:])
        rng = np.random.default_rng(11)
        x = RnsPolynomial(extended, _random_limbs(rng, extended), Domain.COEFF)
        assert np.array_equal(
            scale_down(x, special, 256).limbs,
            scale_down_reference(x, special, 256).limbs,
        )

    def test_plaintext_modulus_above_q(self):
        # t > min(q) forces the explicit w mod q reduction branch.
        basis, extended = _pair(28, 27, l_src=4, l_dst=2)
        special = RnsBasis(extended.moduli[-2:])
        rng = np.random.default_rng(13)
        x = RnsPolynomial(extended, _random_limbs(rng, extended), Domain.COEFF)
        t = 1 << 30
        assert t > min(basis.moduli)
        assert np.array_equal(
            scale_down(x, special, t).limbs,
            scale_down_reference(x, special, t).limbs,
        )


class TestMixedRadix:
    @pytest.mark.parametrize("bits", [27, 31])
    def test_digits_residues_and_compare_are_exact(self, bits):
        moduli = tuple(_primes(bits, 3))
        special = RnsBasis(moduli)
        mr = convert.get_mixed_radix(moduli)
        rng = np.random.default_rng(bits)
        limbs = _random_limbs(rng, special, n=64)
        values = special.from_rns(limbs)
        a = mr.digits(limbs)
        # Digits recompose to the CRT value exactly.
        recomposed = [
            sum(int(a[i, j]) * mr.prefixes[i] for i in range(mr.k))
            for j in range(64)
        ]
        assert recomposed == values
        targets = tuple(_primes(28, 2, exclude=moduli)) + (65537,)
        res = mr.residues(a, targets)
        for r, m in enumerate(targets):
            assert [int(v) for v in res[r]] == [v % m for v in values]
        half = special.modulus // 2
        assert list(mr.greater_than(a, half)) == [v > half for v in values]
        # Equality must compare as not-greater.
        exact = mr.threshold_digits(values[0])
        col = mr.digits(limbs[:, :1])
        assert np.array_equal(col[:, 0], exact)
        assert not mr.greater_than(col, values[0])[0]


class TestFromRns:
    @pytest.mark.parametrize("bits,level", [(28, 4), (28, 16), (30, 6), (31, 6)])
    @pytest.mark.parametrize("centered", [False, True])
    def test_lazy_matches_exact(self, bits, level, centered):
        basis = RnsBasis(_primes(bits, level))
        rng = np.random.default_rng(level)
        limbs = _random_limbs(rng, basis)
        assert basis.from_rns(limbs, centered=centered) == \
            basis._from_rns_exact(limbs, centered=centered)
        maxed = _max_limbs(basis)
        assert basis.from_rns(maxed, centered=centered) == \
            basis._from_rns_exact(maxed, centered=centered)

    def test_default_primes_take_the_full_word_path(self):
        # 28-bit default sets leave enough headroom for full 32-bit words —
        # the no-big-int carry-propagation recomposition.
        acc = convert.get_word_accumulator(tuple(_primes(28, 8)))
        assert acc.ok and acc.wbits == 32

    def test_word_accumulator_sum_is_exact(self):
        moduli = tuple(_primes(28, 8))
        acc = convert.get_word_accumulator(moduli)
        weights = convert.crt_weights(moduli)
        rng = np.random.default_rng(5)
        digits = _random_limbs(rng, RnsBasis(moduli), n=32)
        got = acc.reconstruct(digits)
        want = [
            sum(int(digits[i, j]) * weights[i][0] for i in range(len(moduli)))
            for j in range(32)
        ]
        assert got == want


class TestToRnsFastPath:
    def test_already_reduced_input_tiles(self):
        basis = RnsBasis(_primes(28, 4))
        lo = min(basis.moduli)
        arr = np.array([0, 1, lo - 1], dtype=np.uint64)
        out = basis.to_rns(arr)
        assert np.array_equal(out, np.tile(arr, (basis.level, 1)))

    def test_boundary_value_still_reduces(self):
        basis = RnsBasis(_primes(28, 4))
        lo = min(basis.moduli)
        arr = np.array([lo, lo - 1], dtype=np.uint64)
        out = basis.to_rns(arr)
        for i, q in enumerate(basis.moduli):
            assert [int(v) for v in out[i]] == [lo % q, (lo - 1) % q]

    def test_signed_nonnegative_input_tiles(self):
        basis = RnsBasis(_primes(28, 4))
        arr = np.array([0, 7, 41], dtype=np.int64)
        assert np.array_equal(
            basis.to_rns(arr), np.tile(arr.astype(np.uint64), (basis.level, 1))
        )

    def test_signed_negative_input_reduces(self):
        basis = RnsBasis(_primes(28, 4))
        arr = np.array([-1, 5], dtype=np.int64)
        out = basis.to_rns(arr)
        for i, q in enumerate(basis.moduli):
            assert [int(v) for v in out[i]] == [q - 1, 5]
