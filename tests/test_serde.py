"""Serialization layer: compact state round-trips for the FHE stack.

The invariants the process-pool serving path depends on:

- ``to_state()/from_state()`` round-trips (and the ``__getstate__`` /
  ``__setstate__`` pickles riding them) are lossless where it matters:
  params, moduli, secret-key coefficients, RNG state, ciphertext limbs;
- restored state decrypts bit-identically (BGV) / tolerance-equal (CKKS);
- derived artifacts — NTT twiddles, Shoup quotients, key-switch hint
  caches, per-basis secret-key forms, hint stacks — are *rebuilt on
  load, never shipped*, which keeps blobs compact (the pickle-size
  bounds below would blow up by orders of magnitude otherwise).
"""

import pickle

import numpy as np
import pytest

from repro.fhe.bgv import BgvContext
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.ckks import CkksContext
from repro.fhe.context import context_from_state
from repro.fhe.keys import SecretKey
from repro.fhe.params import FheParams
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis

N = 256


@pytest.fixture(scope="module")
def params():
    return FheParams.build(n=N, levels=4, prime_bits=28,
                           plaintext_modulus=256)


class TestBasicRoundTrips:
    def test_rns_basis_reduce_rebuilds_columns(self, params):
        basis = params.basis
        restored = pickle.loads(pickle.dumps(basis))
        assert restored == basis and restored.modulus == basis.modulus
        # Derived broadcast columns were rebuilt, not shipped.
        assert np.array_equal(restored.moduli_column(), basis.moduli_column())

    def test_params_state_round_trip(self, params):
        restored = FheParams.from_state(params.to_state())
        assert restored == params
        assert pickle.loads(pickle.dumps(params)) == params

    def test_secret_key_round_trip_drops_caches(self, params):
        rng = np.random.default_rng(3)
        secret = SecretKey.generate(N, rng)
        secret.poly(params.basis)           # populate a derived cache
        secret.square_poly(params.basis)
        restored = pickle.loads(pickle.dumps(secret))
        assert np.array_equal(restored.coeffs, secret.coeffs)
        assert restored._cache == {} and restored._square_cache == {}
        # The rebuilt NTT form is bit-identical to the original's.
        assert np.array_equal(restored.poly(params.basis).limbs,
                              secret.poly(params.basis).limbs)

    def test_rns_polynomial_round_trip_both_domains(self, params):
        rng = np.random.default_rng(5)
        poly = RnsPolynomial.random_uniform(params.basis, N, rng)
        for form in (poly, poly.to_ntt()):
            restored = pickle.loads(pickle.dumps(form))
            assert restored.domain is form.domain
            assert restored.basis == form.basis
            assert np.array_equal(restored.limbs, form.limbs)
            state_restored = RnsPolynomial.from_state(form.to_state())
            assert np.array_equal(state_restored.limbs, form.limbs)


class TestContextRoundTrips:
    def test_bgv_context_decrypts_bit_identically(self, params):
        ctx = BgvContext(params, seed=7)
        msg = np.arange(N) % 256
        ct = ctx.encrypt(msg)
        ctx2 = pickle.loads(pickle.dumps(ctx))
        ct2 = Ciphertext.from_state(
            pickle.loads(pickle.dumps(ct.to_state()))
        )
        assert np.array_equal(ctx2.decrypt(ct2), ctx.decrypt(ct))
        assert np.array_equal(ctx2.secret.coeffs, ctx.secret.coeffs)
        assert context_from_state(ctx.to_state()).decrypt(ct).tolist() \
            == ctx.decrypt(ct).tolist()

    def test_bgv_rng_state_travels(self, params):
        """Restored contexts continue the parent's RNG stream exactly."""
        ctx = BgvContext(params, seed=7)
        ctx.encrypt(np.zeros(N))            # advance the stream first
        ctx2 = pickle.loads(pickle.dumps(ctx))
        msg = np.arange(N) % 256
        ct1, ct2 = ctx.encrypt(msg), ctx2.encrypt(msg)
        assert np.array_equal(ct1.a.limbs, ct2.a.limbs)
        assert np.array_equal(ct1.b.limbs, ct2.b.limbs)

    def test_restored_context_regenerates_hints_correctly(self, params):
        """Hints are never shipped; regenerated ones (fresh randomness)
        still decrypt mul/rotate results bit-identically."""
        ctx = BgvContext(params, seed=7)
        msg = np.arange(N) % 256
        ct = ctx.encrypt(msg)
        ctx2 = pickle.loads(pickle.dumps(ctx))
        assert ctx2._hints_v1 == {} and ctx2._hints_v2 == {}
        ct_b = pickle.loads(pickle.dumps(ct))
        assert np.array_equal(ctx2.decrypt(ctx2.mul(ct_b, ct_b)),
                              ctx.decrypt(ctx.mul(ct, ct)))
        assert np.array_equal(ctx2.decrypt(ctx2.rotate(ct_b, 3)),
                              ctx.decrypt(ctx.rotate(ct, 3)))

    def test_ckks_context_tolerance_equal(self, params):
        ctx = CkksContext(params, seed=3)
        values = np.linspace(-1, 1, N // 4)
        ct = ctx.encrypt_values(values)
        ctx2 = pickle.loads(pickle.dumps(ctx))
        assert ctx2.default_scale == ctx.default_scale
        got = ctx2.decrypt_values(pickle.loads(pickle.dumps(ct)),
                                  count=values.shape[0])
        assert np.max(np.abs(got.real - values)) < 1e-2
        # Dispatch restores the right concrete class.
        assert isinstance(context_from_state(ctx.to_state()), CkksContext)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="cannot restore"):
            context_from_state({"scheme": "tfhe"})


class TestPickleSizeBounds:
    def test_context_blob_is_compact(self, params):
        """A context blob is keys + params + RNG state, nothing derived."""
        ctx = BgvContext(params, seed=7)
        blob = pickle.dumps(ctx)
        # Secret coefficients are N int64s (2 KiB at N=256); everything
        # else is parameters and RNG state.  Far below the megabytes a
        # shipped hint/twiddle cache would cost.
        assert len(blob) < 16 * 1024

    def test_hint_caches_never_shipped(self, params):
        ctx = BgvContext(params, seed=7)
        before = len(pickle.dumps(ctx))
        ct = ctx.encrypt(np.arange(N) % 256)
        ctx.mul(ct, ct)                     # relin hint: 2*L rows of (L, N)
        for steps in (1, 2, 3):
            ctx.rotate(ct, steps)           # three galois hints
        after = len(pickle.dumps(ctx))
        # Four v1 hints hold 8 * L * N * 8 bytes of uint64 per hint
        # (~256 KiB total here); the blob must not grow by anything close.
        assert after - before < 4 * 1024

    def test_hint_stacks_not_doubled(self, params):
        """Pickling a hint ships hint rows once: the cached (L, L, N)
        stacks alias the same memory and are dropped from the state."""
        ctx = BgvContext(params, seed=7)
        hint = ctx.hint_v1("relin", params.basis)
        cold = len(pickle.dumps(hint))
        _ = hint.stack0, hint.stack1        # populate the cached stacks
        warm = pickle.dumps(hint)
        assert len(warm) < cold * 1.25
        restored = pickle.loads(warm)
        assert "stack0" not in restored.__dict__
        assert np.array_equal(restored.stack0, hint.stack0)
