"""Thread-fan bit-identity: REPRO_NUM_THREADS must never change results.

The limb-stack pool (:mod:`repro.poly.parallel`) splits work along axes
whose chunks are computed by the same kernels on the same values, so every
fan point — flat and stacked NTT, batched base extension, scale-down, the
serve slot pack/unpack — must produce bit-identical outputs at any thread
count, and a threaded end-to-end batched run must match the serial one.
Also covers the pool plumbing itself: env parsing, the override, span
splitting, no-nesting, and deterministic error propagation.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.backends import FunctionalBackend
from repro.bench.loadgen import (
    linear_bgv_program,
    poly_ckks_program,
    synthetic_requests,
)
from repro.fhe.keyswitch import base_extend, scale_down
from repro.poly import parallel
from repro.poly.ntt import get_rns_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes
from repro.serve.batcher import SlotBatcher

# Large enough that (L, N) stacks clear MIN_PARALLEL_ELEMS and the fans
# actually engage (1024 * 8 limbs = 8192 elements).
N, LEVEL = 1024, 8


@contextlib.contextmanager
def threads(n: int):
    prev = parallel.set_num_threads(n)
    try:
        yield
    finally:
        parallel.set_num_threads(prev)


@pytest.fixture(scope="module")
def setup():
    basis = RnsBasis(ntt_friendly_primes(N, 28, LEVEL))
    special = RnsBasis(
        [p for p in ntt_friendly_primes(N, 27, LEVEL + 4)
         if p not in basis.moduli][:4]
    )
    extended = RnsBasis(basis.moduli + special.moduli)
    rng = np.random.default_rng(23)
    limbs = np.stack(
        [rng.integers(0, q, N, dtype=np.uint64) for q in basis.moduli]
    )
    stack = np.stack([limbs, limbs[:, ::-1].copy(), limbs ^ 1, limbs])
    ext_limbs = np.stack(
        [rng.integers(0, q, N, dtype=np.uint64) for q in extended.moduli]
    )
    return {
        "basis": basis, "special": special, "extended": extended,
        "ctx": get_rns_context(N, basis.moduli),
        "limbs": limbs, "stack": stack,
        "x": RnsPolynomial(basis, limbs, Domain.COEFF),
        "x_ext": RnsPolynomial(extended, ext_limbs, Domain.COEFF),
    }


class TestPoolPlumbing:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert parallel.num_threads() == 1
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        assert parallel.num_threads() == 4
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        assert parallel.num_threads() == 1
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        assert parallel.num_threads() == 1

    def test_override_wins_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "8")
        prev = parallel.set_num_threads(2)
        try:
            assert parallel.num_threads() == 2
        finally:
            parallel.set_num_threads(prev)
        assert parallel.num_threads() == 8

    def test_split_ranges_covers_exactly(self):
        for total in (1, 5, 8, 17):
            for parts in (1, 2, 3, 8, 50):
                spans = parallel.split_ranges(total, parts)
                assert spans[0][0] == 0 and spans[-1][1] == total
                assert all(lo < hi for lo, hi in spans)
                assert all(
                    spans[i][1] == spans[i + 1][0]
                    for i in range(len(spans) - 1)
                )
                assert len(spans) == min(parts, total)

    def test_no_nested_fans(self):
        seen = []
        with threads(2):
            parallel.run_tasks(
                [lambda: seen.append(parallel.active_threads())] * 2
            )
        assert seen == [1, 1]

    def test_first_submission_order_error_wins(self):
        def boom_a():
            raise ValueError("a")

        def boom_b():
            raise ValueError("b")

        with threads(2):
            with pytest.raises(ValueError, match="a"):
                parallel.run_tasks([boom_a, boom_b])


@pytest.mark.parametrize("nt", [1, 2, 4])
class TestFanBitIdentity:
    def test_ntt_flat(self, setup, nt):
        ref = setup["ctx"].forward(setup["limbs"])
        with threads(nt):
            assert np.array_equal(setup["ctx"].forward(setup["limbs"]), ref)
        ref_inv = setup["ctx"].inverse(ref)
        with threads(nt):
            assert np.array_equal(setup["ctx"].inverse(ref), ref_inv)

    def test_ntt_stacked(self, setup, nt):
        ref = setup["ctx"].forward(setup["stack"])
        with threads(nt):
            got = setup["ctx"].forward(setup["stack"])
        assert np.array_equal(got, ref)

    def test_base_extend(self, setup, nt):
        ref = base_extend(setup["x"], setup["extended"]).limbs
        with threads(nt):
            got = base_extend(setup["x"], setup["extended"]).limbs
        assert np.array_equal(got, ref)

    def test_scale_down(self, setup, nt):
        ref = scale_down(setup["x_ext"], setup["special"], 256).limbs
        with threads(nt):
            got = scale_down(setup["x_ext"], setup["special"], 256).limbs
        assert np.array_equal(got, ref)

    def test_pack_unpack(self, nt):
        program = poly_ckks_program(512)
        batcher = SlotBatcher(program, width=16)
        requests = synthetic_requests(
            program, batcher.capacity, width=16, seed=7
        )
        ref_inputs, ref_plains = batcher.pack(requests)
        out_id = program.ops[-1].op_id
        fake = {out_id: next(iter(ref_inputs.values()))}
        ref_unpacked = batcher.unpack(fake, batcher.capacity)
        with threads(nt):
            inputs, plains = batcher.pack(requests)
            unpacked = batcher.unpack(fake, batcher.capacity)
        assert list(inputs) == list(ref_inputs)
        assert list(plains) == list(ref_plains)
        assert all(np.array_equal(inputs[k], ref_inputs[k]) for k in inputs)
        assert all(np.array_equal(plains[k], ref_plains[k]) for k in plains)
        for got_req, ref_req in zip(unpacked, ref_unpacked):
            assert list(got_req) == list(ref_req)
            assert all(
                np.array_equal(got_req[k], ref_req[k]) for k in got_req
            )


class TestEndToEndThreaded:
    def test_bgv_batched_run_bit_identical(self):
        program = linear_bgv_program(N)
        batcher = SlotBatcher(program, width=16)
        requests = synthetic_requests(program, 4, width=16, seed=11)
        backend = FunctionalBackend(validate=False)
        ref, _ = batcher.run(requests, backend, seed=3)
        with threads(2):
            got, _ = batcher.run(requests, backend, seed=3)
        for got_req, ref_req in zip(got, ref):
            assert all(
                np.array_equal(got_req[k], ref_req[k]) for k in ref_req
            )

    def test_ckks_batched_run_matches(self):
        program = poly_ckks_program(N)
        batcher = SlotBatcher(program, width=16)
        requests = synthetic_requests(program, 4, width=16, seed=11)
        backend = FunctionalBackend(validate=False)
        ref, _ = batcher.run(requests, backend, seed=3)
        with threads(2):
            got, _ = batcher.run(requests, backend, seed=3)
        for got_req, ref_req in zip(got, ref):
            for k in ref_req:
                np.testing.assert_allclose(
                    got_req[k], ref_req[k], rtol=0, atol=1e-8
                )
