"""Key switching internals (repro.fhe.keyswitch): the Listing-1 RNS variant
and the raised-modulus variant, plus base extension and scale-down."""

import numpy as np
import pytest

from repro.fhe.keys import generate_ks_hint, generate_raised_ks_hint
from repro.fhe.keyswitch import base_extend, key_switch_v1, key_switch_v2, scale_down
from repro.fhe.sampling import uniform_poly
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

N = 128
T = 256


@pytest.fixture(scope="module")
def basis(bgv_params):
    return bgv_params.basis


def _phase_error_bits(u0, u1, s, x, old_key):
    """max |(u0 - u1*s) - x*old_key| as log2, centered mod Q."""
    got = u0 - u1 * s
    want = x * old_key
    diff = (got - want).to_int_coeffs(centered=True)
    worst = max((abs(d) for d in diff), default=0)
    return worst.bit_length()


class TestVariant1:
    def test_identity_on_phase(self, bgv, rng):
        """u0 - u1*s = x*s^2 + t*(small): the relinearization contract."""
        basis = bgv.params.basis
        x = uniform_poly(basis, bgv.params.n, rng, Domain.NTT)
        hint = bgv.hint_v1("relin", basis)
        u0, u1 = key_switch_v1(x, hint)
        s = bgv.secret.poly(basis)
        err_bits = _phase_error_bits(u0, u1, s, x, bgv.secret.square_poly(basis))
        # Error = t * sum d_i e_i: bounded by t * L * q * e * N.
        bound = (
            8 + 2 + 28 + 3 + bgv.params.n.bit_length()
        )
        assert err_bits <= bound

    def test_error_is_multiple_of_t(self, bgv, rng):
        basis = bgv.params.basis
        x = uniform_poly(basis, bgv.params.n, rng, Domain.NTT)
        u0, u1 = key_switch_v1(x, bgv.hint_v1("relin", basis))
        s = bgv.secret.poly(basis)
        diff = (u0 - u1 * s - x * bgv.secret.square_poly(basis)).to_int_coeffs()
        assert all(d % T == 0 for d in diff)

    def test_requires_ntt_domain(self, bgv, rng):
        basis = bgv.params.basis
        x = uniform_poly(basis, bgv.params.n, rng, Domain.COEFF)
        with pytest.raises(ValueError):
            key_switch_v1(x, bgv.hint_v1("relin", basis))

    def test_basis_mismatch_rejected(self, bgv, rng):
        basis = bgv.params.basis
        hint = bgv.hint_v1("relin", basis)
        low = uniform_poly(RnsBasis(basis.moduli[:2]), bgv.params.n, rng, Domain.NTT)
        with pytest.raises(ValueError):
            key_switch_v1(low, hint)


class TestVariant2:
    def test_identity_on_phase(self, bgv_v2, rng):
        basis = bgv_v2.params.basis
        x = uniform_poly(basis, bgv_v2.params.n, rng, Domain.NTT)
        hint = bgv_v2.hint_v2("relin", basis)
        u0, u1 = key_switch_v2(x, hint, T)
        s = bgv_v2.secret.poly(basis)
        err_bits = _phase_error_bits(
            u0.to_ntt(), u1.to_ntt(), s, x, bgv_v2.secret.square_poly(basis)
        )
        # v2's error is ~t*e*N — far below v1's.
        assert err_bits <= 8 + 3 + bgv_v2.params.n.bit_length() + 6


class TestBaseExtension:
    def test_extension_is_x_plus_multiple_of_q(self, bgv, rng):
        basis = bgv.params.basis
        special = bgv._special_basis_for(basis)
        extended = RnsBasis(basis.moduli + special.moduli)
        x = uniform_poly(basis, N, rng, Domain.COEFF)
        lifted = base_extend(x, extended)
        q = basis.modulus
        x_ints = x.to_int_coeffs(centered=False)
        for lifted_c, orig_c in zip(lifted.to_int_coeffs(centered=False), x_ints):
            diff = (lifted_c - orig_c) % extended.modulus
            assert diff % q == 0
            assert diff // q < basis.level  # u < L

    def test_original_limbs_preserved(self, bgv, rng):
        basis = bgv.params.basis
        special = bgv._special_basis_for(basis)
        extended = RnsBasis(basis.moduli + special.moduli)
        x = uniform_poly(basis, N, rng, Domain.COEFF)
        lifted = base_extend(x, extended)
        assert np.array_equal(lifted.limbs[: basis.level], x.limbs)

    def test_requires_coeff_domain(self, bgv, rng):
        basis = bgv.params.basis
        special = bgv._special_basis_for(basis)
        extended = RnsBasis(basis.moduli + special.moduli)
        x = uniform_poly(basis, N, rng, Domain.NTT)
        with pytest.raises(ValueError):
            base_extend(x, extended)


class TestScaleDown:
    def test_divides_by_p_with_t_preservation(self, bgv):
        basis = bgv.params.basis
        special = bgv._special_basis_for(basis)
        extended = RnsBasis(basis.moduli + special.moduli)
        p_product = special.modulus
        # Build x = P * v for a known small v: scale-down must return v.
        v_ints = list(range(-8, 8)) + [0] * (N - 16)
        x = RnsPolynomial.from_int_coeffs(
            extended, [c * p_product for c in v_ints]
        )
        out = scale_down(x, special, T)
        assert out.to_int_coeffs(centered=True) == v_ints

    def test_rounding_error_is_multiple_of_t_and_small(self, bgv, rng):
        basis = bgv.params.basis
        special = bgv._special_basis_for(basis)
        extended = RnsBasis(basis.moduli + special.moduli)
        x = uniform_poly(extended, N, rng, Domain.COEFF)
        out = scale_down(x, special, T)
        p_product = special.modulus
        x_ints = x.to_int_coeffs(centered=True)
        out_ints = out.to_int_coeffs(centered=True)
        q = basis.modulus
        for xi, oi in zip(x_ints, out_ints):
            err = (oi * p_product - xi) % q
            err = min(err, q - err)
            # delta bounded by P*(t+1)/2-ish.
            assert err <= p_product * (T + 2) // 2
