"""The checker must catch corrupted schedules (repro.sim.simulator)."""

import dataclasses

import pytest

from repro.compiler.hecompiler import compile_to_instructions
from repro.compiler.data_scheduler import Event, schedule_data_movement
from repro.compiler.cycle_scheduler import schedule_cycles
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.sim.simulator import check_schedule


@pytest.fixture(scope="module")
def pieces():
    p = Program(n=2048, name="checker")
    x, y = p.input(3), p.input(3)
    p.output(p.rotate(p.mul(x, y), 1))
    cfg = F1Config()
    translation = compile_to_instructions(p)
    movement = schedule_data_movement(translation.graph, translation.outputs, cfg)
    schedule = schedule_cycles(translation.graph, movement, cfg)
    return translation, movement, schedule, cfg


def test_valid_schedule_passes(pieces):
    translation, movement, schedule, cfg = pieces
    report = check_schedule(translation.graph, movement, schedule, cfg)
    assert report.ok, report.violations[:3]
    assert report.peak_resident_rvecs > 0


def test_detects_dependence_violation(pieces):
    translation, movement, schedule, cfg = pieces
    # Yank a late instruction to cycle 0: its operands can't be ready.
    hacked = dataclasses.replace(schedule)
    victim_idx = len(hacked.instrs) - 1
    victim = hacked.instrs[victim_idx]
    hacked.instrs = list(hacked.instrs)
    hacked.instrs[victim_idx] = dataclasses.replace(victim, start=0, end=1)
    report = check_schedule(translation.graph, movement, hacked, cfg)
    assert not report.ok
    assert any("before operand" in v for v in report.violations)


def test_detects_structural_hazard(pieces):
    translation, movement, schedule, cfg = pieces
    hacked = dataclasses.replace(schedule)
    hacked.instrs = list(hacked.instrs)
    # Force two instructions onto the same unit at the same cycle.
    first = hacked.instrs[0]
    clash = None
    for i, s in enumerate(hacked.instrs[1:], start=1):
        if s.fu == first.fu:
            clash = i
            break
    assert clash is not None
    hacked.instrs[clash] = dataclasses.replace(
        hacked.instrs[clash],
        start=first.start,
        end=first.start + hacked.instrs[clash].occupancy,
        cluster=first.cluster,
        unit=first.unit,
    )
    report = check_schedule(translation.graph, movement, hacked, cfg)
    assert not report.ok


def test_detects_hbm_oversubscription(pieces):
    translation, movement, schedule, cfg = pieces
    hacked = dataclasses.replace(schedule)
    hacked.transfers = list(hacked.transfers)
    if len(hacked.transfers) >= 2:
        a = hacked.transfers[0]
        hacked.transfers[1] = dataclasses.replace(
            hacked.transfers[1], start=a.start, end=a.end
        )
        report = check_schedule(translation.graph, movement, hacked, cfg)
        assert any("HBM" in v for v in report.violations)


def test_store_durations_checked_from_recorded_end(pieces):
    """Stores must be serialized by their *recorded* end, not load_cycles.

    Regression: the checker used to size every transfer as load_cycles, so a
    store occupying the channel longer than that slipped past the HBM
    serialization check."""
    translation, movement, schedule, cfg = pieces
    from repro.compiler.cycle_scheduler import ScheduledTransfer

    load_cycles = cfg.load_cycles(translation.graph.n)
    hacked = dataclasses.replace(schedule)
    # A store-heavy tail: store0 occupies [1000, 1000 + 3*load_cycles) but the
    # next store is issued as if it only took load_cycles — a real overlap
    # that the load_cycles-based check cannot see.
    hacked.transfers = list(schedule.transfers) + [
        ScheduledTransfer("store", 9001, 1000.0, 1000.0 + 3 * load_cycles),
        ScheduledTransfer("store", 9002, 1000.0 + load_cycles,
                          1000.0 + 2 * load_cycles),
    ]
    report = check_schedule(translation.graph, movement, hacked, cfg)
    assert any("HBM" in v for v in report.violations)


def test_store_heavy_schedule_with_correct_spacing_passes(pieces):
    translation, movement, schedule, cfg = pieces
    from repro.compiler.cycle_scheduler import ScheduledTransfer

    load_cycles = cfg.load_cycles(translation.graph.n)
    end = max((tr.end for tr in schedule.transfers), default=0.0)
    hacked = dataclasses.replace(schedule)
    # Back-to-back stores of the recorded duration: no overlap, no violation.
    hacked.transfers = list(schedule.transfers) + [
        ScheduledTransfer("store", 9001, end + 10, end + 10 + load_cycles),
        ScheduledTransfer("store", 9002, end + 10 + load_cycles,
                          end + 10 + 2 * load_cycles),
    ]
    report = check_schedule(translation.graph, movement, hacked, cfg)
    assert report.ok, report.violations[:3]


def test_detects_clobber(pieces):
    translation, movement, schedule, cfg = pieces
    hacked_movement = dataclasses.replace(movement)
    hacked_movement.events = [
        e for e in movement.events if e.kind != "load"
    ]
    report = check_schedule(translation.graph, hacked_movement, schedule, cfg)
    assert not report.ok
    assert any("clobber" in v for v in report.violations)


def test_raise_if_failed(pieces):
    translation, movement, schedule, cfg = pieces
    hacked_movement = dataclasses.replace(movement)
    hacked_movement.events = [e for e in movement.events if e.kind != "load"]
    report = check_schedule(translation.graph, hacked_movement, schedule, cfg)
    with pytest.raises(AssertionError):
        report.raise_if_failed()
