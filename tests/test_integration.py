"""End-to-end integration: compile -> schedule -> check -> stats, across the
benchmark suite at tiny scale, plus the table/figure harnesses."""

import numpy as np
import pytest

from repro.bench.micro import MICRO_PARAM_SETS, microbenchmark_f1_ns
from repro.bench.runner import run_benchmark, table4_rows
from repro.bench.workloads import benchmark_suite, lola_mnist
from repro.compiler.pipeline import compile_program
from repro.core.config import F1Config
from repro.sim.simulator import check_schedule
from repro.sim.stats import power_breakdown, traffic_fractions, utilization_timeline

SMALL_N = 4096


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite(scale=0.08, n=SMALL_N)


class TestFullPipeline:
    def test_all_benchmarks_compile_and_validate(self, suite):
        for name, program in suite.items():
            result = run_benchmark(program)  # check=True validates
            assert result.f1_ms > 0, name
            assert result.cpu_ms > result.f1_ms, name

    def test_speedups_are_three_to_five_orders(self, suite):
        """The headline claim: F1 wins by 3-4+ orders of magnitude."""
        for name, program in suite.items():
            result = run_benchmark(program, check=False)
            assert 100 < result.speedup < 10**6, (name, result.speedup)

    def test_stats_self_consistent(self, suite):
        program = suite["lola_mnist_uw"]
        cp = compile_program(program)
        fractions = traffic_fractions(cp.movement, cp.config.rvec_bytes(SMALL_N))
        assert sum(fractions.values()) == pytest.approx(1.0)
        power = power_breakdown(cp.schedule, cp.movement)
        assert power["total"] == pytest.approx(
            sum(v for k, v in power.items() if k != "total")
        )
        assert 0 < power["total"] < 1000

    def test_timeline_conserves_busy_cycles(self, suite):
        cp = compile_program(suite["lola_mnist_uw"])
        tl = utilization_timeline(cp.schedule, windows=32)
        for fu, series in tl.active_fus.items():
            total = float(series.sum()) * tl.window_cycles
            assert total == pytest.approx(cp.schedule.fu_busy_cycles[fu], rel=0.01)

    def test_deep_benchmarks_are_ksh_dominated(self, suite):
        """Fig. 9a: key-switch hints dominate the deep workloads."""
        cp = compile_program(suite["logistic_regression"])
        fractions = traffic_fractions(cp.movement, cp.config.rvec_bytes(SMALL_N))
        ksh = fractions["ksh_compulsory"] + fractions["ksh_capacity"]
        assert ksh > 0.5


class TestMicrobenchmarks:
    def test_f1_ns_close_to_paper(self):
        """F1 reciprocal throughputs within 2x of Table 4 at every point."""
        paper = {
            ("ntt", 1 << 12): 12.8, ("ntt", 1 << 13): 44.8, ("ntt", 1 << 14): 179.2,
            ("aut", 1 << 12): 12.8, ("aut", 1 << 13): 44.8, ("aut", 1 << 14): 179.2,
            ("mul", 1 << 12): 60.0, ("mul", 1 << 13): 300.0, ("mul", 1 << 14): 2000.0,
            ("perm", 1 << 12): 40.0, ("perm", 1 << 13): 224.0, ("perm", 1 << 14): 1680.0,
        }
        for (n, log_q) in MICRO_PARAM_SETS:
            for op in ("ntt", "aut", "mul", "perm"):
                got = microbenchmark_f1_ns(op, n, log_q)
                want = paper[(op, n)]
                assert want / 2 < got < want * 2, (op, n, got, want)

    def test_table4_rows_complete(self):
        rows = table4_rows()
        assert len(rows) == 12
        for row in rows:
            assert row["speedup_vs_cpu"] > 1000
            assert row["speedup_vs_heax"] > 50


class TestSensitivityDirections:
    def test_lt_ntt_hurts_compute_bound_benchmark(self):
        """Table 5's direction: low-throughput NTTs slow MNIST down."""
        program = lola_mnist(scale=0.15, n=SMALL_N)
        base = run_benchmark(program, F1Config(), check=False).f1_ms
        lt = run_benchmark(
            program, F1Config().with_low_throughput_ntt(), check=False
        ).f1_ms
        assert lt >= base * 0.95  # never meaningfully faster

    def test_lt_aut_not_faster(self):
        program = lola_mnist(scale=0.15, n=SMALL_N)
        base = run_benchmark(program, F1Config(), check=False).f1_ms
        lt = run_benchmark(
            program, F1Config().with_low_throughput_aut(), check=False
        ).f1_ms
        assert lt >= base * 0.95
