"""Functional simulator (repro.sim.functional, Sec. 8.5): DSL programs
executed on real ciphertexts, checked against a plaintext oracle."""

import numpy as np
import pytest

from repro.dsl.program import OpKind, Program
from repro.fhe.params import FheParams
from repro.poly.automorphism import automorphism_coeff
from repro.poly.ntt import naive_negacyclic_multiply
from repro.sim.functional import FunctionalSimulator

N = 256
T = 256


def plaintext_oracle(program: Program, inputs, plains):
    """Interpret the op graph directly on plaintext vectors (mod t).

    Rotations are sigma_{3^r} on coefficients — the same semantics the
    homomorphic path implements."""
    env = {}
    out = {}
    for op in program.ops:
        k = op.kind
        if k is OpKind.INPUT:
            env[op.op_id] = np.asarray(inputs[op.op_id], dtype=np.uint64) % T
        elif k is OpKind.INPUT_PLAIN:
            v = np.zeros(N, dtype=np.uint64)
            data = np.asarray(plains.get(op.op_id, [1]), dtype=np.uint64)
            v[: data.shape[0]] = data % T
            env[op.op_id] = v
        elif k is OpKind.ADD:
            env[op.op_id] = (env[op.args[0]] + env[op.args[1]]) % T
        elif k is OpKind.SUB:
            env[op.op_id] = (env[op.args[0]] - env[op.args[1]]) % T
        elif k is OpKind.MUL:
            env[op.op_id] = naive_negacyclic_multiply(
                env[op.args[0]], env[op.args[1]], T
            )
        elif k is OpKind.MUL_PLAIN:
            env[op.op_id] = naive_negacyclic_multiply(
                env[op.args[0]], env[op.args[1]], T
            )
        elif k is OpKind.ADD_PLAIN:
            env[op.op_id] = (env[op.args[0]] + env[op.args[1]]) % T
        elif k is OpKind.ROTATE:
            exponent = pow(3, op.rotate_steps, 2 * N)
            env[op.op_id] = automorphism_coeff(env[op.args[0]], exponent, T)
        elif k is OpKind.MOD_SWITCH:
            env[op.op_id] = env[op.args[0]]
        elif k is OpKind.OUTPUT:
            env[op.op_id] = env[op.args[0]]
            out[op.op_id] = env[op.args[0]]
    return out


@pytest.fixture(scope="module")
def params():
    return FheParams.build(n=N, levels=4, prime_bits=28, plaintext_modulus=T)


class TestBgvPrograms:
    def _run_and_compare(self, program, params, inputs, plains=None):
        plains = plains or {}
        sim = FunctionalSimulator(program, params, seed=5)
        got = sim.run(inputs, plains)
        want = plaintext_oracle(program, inputs, plains)
        assert got.keys() == want.keys()
        for key in got:
            assert np.array_equal(got[key] % T, want[key] % T), key

    def test_add_chain(self, params):
        p = Program(n=N, name="adds")
        x, y = p.input(2), p.input(2)
        p.output(p.add(p.add(x, y), x))
        rng = np.random.default_rng(0)
        self._run_and_compare(
            p, params,
            {x.op_id: rng.integers(0, T, N), y.op_id: rng.integers(0, T, N)},
        )

    def test_mul_with_rescale(self, params):
        p = Program(n=N, name="mul")
        x, y = p.input(3), p.input(3)
        p.output(p.mul(x, y))
        rng = np.random.default_rng(1)
        self._run_and_compare(
            p, params,
            {x.op_id: rng.integers(0, T, N), y.op_id: rng.integers(0, T, N)},
        )

    def test_rotate(self, params):
        p = Program(n=N, name="rot")
        x = p.input(2)
        p.output(p.rotate(x, 3))
        rng = np.random.default_rng(2)
        self._run_and_compare(p, params, {x.op_id: rng.integers(0, T, N)})

    def test_mul_plain_and_add_plain(self, params):
        p = Program(n=N, name="plain")
        x = p.input(2)
        w = p.input_plain(2)
        c = p.input_plain(2)
        p.output(p.add_plain(p.mul_plain(x, w), c))
        rng = np.random.default_rng(3)
        self._run_and_compare(
            p, params,
            {x.op_id: rng.integers(0, T, N)},
            {w.op_id: rng.integers(0, T, N), c.op_id: rng.integers(0, T, N)},
        )

    def test_matvec_program_shape(self, params):
        """A miniature Listing-2: mul + rotate-accumulate + output."""
        p = Program(n=N, name="mini_matvec")
        row = p.input(3)
        v = p.input(3)
        prod = p.mul(row, v)
        acc = p.add(prod, p.rotate(prod, 1))
        acc = p.add(acc, p.rotate(acc, 2))
        p.output(acc)
        rng = np.random.default_rng(4)
        self._run_and_compare(
            p, params,
            {row.op_id: rng.integers(0, T, N), v.op_id: rng.integers(0, T, N)},
        )

    def test_depth_two(self, params):
        p = Program(n=N, name="deep")
        x, y, z = p.input(4), p.input(4), p.input(4)
        p.output(p.mul(p.mul(x, y), z))
        rng = np.random.default_rng(6)
        self._run_and_compare(
            p, params,
            {h.op_id: rng.integers(0, T, N) for h in (x, y, z)},
        )


class TestValidation:
    def test_n_mismatch(self, params):
        with pytest.raises(ValueError):
            FunctionalSimulator(Program(n=2 * N), params)

    def test_level_overflow(self, params):
        p = Program(n=N)
        p.input(params.level + 3)
        with pytest.raises(ValueError):
            FunctionalSimulator(p, params)

    def test_missing_input(self, params):
        p = Program(n=N)
        x = p.input(2)
        p.output(x)
        with pytest.raises(KeyError):
            FunctionalSimulator(p, params).run({})
