"""Benchmark workload generators (repro.bench.workloads)."""

import pytest

from repro.bench.workloads import (
    benchmark_suite,
    bgv_bootstrapping,
    ckks_bootstrapping,
    db_lookup,
    lola_cifar,
    lola_mnist,
    logistic_regression,
)
from repro.dsl.program import OpKind


class TestStructure:
    def test_mnist_uw_levels_and_scheme(self):
        p = lola_mnist(encrypted_weights=False, scale=0.2, n=4096)
        assert p.scheme == "ckks"
        assert max(op.level for op in p.ops) == 4  # Sec. 7: starting L=4

    def test_mnist_ew_levels(self):
        p = lola_mnist(encrypted_weights=True, scale=0.2, n=4096)
        assert max(op.level for op in p.ops) == 6  # starting L=6

    def test_mnist_ew_uses_ciphertext_weights(self):
        uw = lola_mnist(encrypted_weights=False, scale=0.2, n=4096)
        ew = lola_mnist(encrypted_weights=True, scale=0.2, n=4096)
        assert sum(1 for op in ew.ops if op.kind is OpKind.MUL) > sum(
            1 for op in uw.ops if op.kind is OpKind.MUL
        )

    def test_cifar_levels(self):
        p = lola_cifar(scale=0.1, n=4096)
        assert max(op.level for op in p.ops) == 8

    def test_logreg_structure(self):
        p = logistic_regression(scale=0.2, n=4096)
        assert p.scheme == "ckks"
        assert max(op.level for op in p.ops) == 16
        assert p.multiplicative_depth() >= 3  # degree-7 sigmoid

    def test_db_lookup_structure(self):
        p = db_lookup(scale=0.2, n=4096)
        assert p.scheme == "bgv"
        assert max(op.level for op in p.ops) == 17
        assert p.multiplicative_depth() >= 10  # Fermat chain

    def test_bgv_bootstrap_structure(self):
        p = bgv_bootstrapping(scale=0.3, n=4096)
        assert max(op.level for op in p.ops) == 24  # L_max = 24
        rotations = [op for op in p.ops if op.kind is OpKind.ROTATE]
        # Trace ladder amounts are all distinct: no hint reuse.
        amounts = [op.rotate_steps for op in rotations]
        assert len(set(amounts)) == len(amounts)

    def test_ckks_bootstrap_fewer_muls_than_bgv(self):
        """Sec. 7: CKKS bootstrapping has many fewer ciphertext multiplies."""
        bgv = bgv_bootstrapping(scale=0.3, n=4096)
        ckks = ckks_bootstrapping(scale=0.3, n=4096)
        count = lambda p: sum(1 for op in p.ops if op.kind is OpKind.MUL)  # noqa
        assert count(ckks) < count(bgv) / 2

    def test_scale_grows_workload(self):
        small = lola_cifar(scale=0.1, n=4096)
        large = lola_cifar(scale=0.4, n=4096)
        assert len(large.ops) > len(small.ops)

    def test_suite_contents(self):
        suite = benchmark_suite(scale=0.1, n=4096)
        assert set(suite) == {
            "lola_cifar", "lola_mnist_uw", "lola_mnist_ew",
            "logistic_regression", "db_lookup",
            "bgv_bootstrapping", "ckks_bootstrapping",
        }

    def test_every_program_has_outputs(self):
        for name, p in benchmark_suite(scale=0.1, n=4096).items():
            assert any(op.kind is OpKind.OUTPUT for op in p.ops), name

    def test_hint_reuse_profile(self):
        """MNIST's FC layers reuse rotation hints; the bootstrap ladder does
        not — the contrast that drives Table 3's speedup spread."""
        mnist = lola_mnist(scale=0.6, n=4096)
        boot = bgv_bootstrapping(scale=0.3, n=4096)

        def rotation_reuse(p):
            from collections import Counter
            hints = Counter(
                op.hint_id for op in p.ops
                if op.hint_id and op.hint_id.startswith("galois")
            )
            return max(hints.values())

        assert rotation_reuse(mnist) >= 3       # FC outputs share amounts
        assert rotation_reuse(boot) == 1        # trace ladder: every amount unique
